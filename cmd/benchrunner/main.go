// Command benchrunner regenerates the paper-reproduction experiment tables
// (E1–E10 in DESIGN.md/EXPERIMENTS.md).
//
// Usage:
//
//	benchrunner -exp all          # every experiment, full parameter sweeps
//	benchrunner -exp E3,E6 -quick # selected experiments, reduced sweeps
//	benchrunner -list             # list the catalogue
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"selfstabsnap/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids (E1..E10) or 'all'")
		quick = flag.Bool("quick", false, "reduced parameter sweeps (seconds instead of minutes)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	params := bench.Params{Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(params)
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
