// Command benchrunner regenerates the paper-reproduction experiment tables
// (E1–E10 in DESIGN.md/EXPERIMENTS.md).
//
// Usage:
//
//	benchrunner -exp all          # every experiment, full parameter sweeps
//	benchrunner -exp E3,E6 -quick # selected experiments, reduced sweeps
//	benchrunner -exp all -json    # also write BENCH_<ID>.json per experiment
//	benchrunner -list             # list the catalogue
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"selfstabsnap/internal/bench"
	"selfstabsnap/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids (E1..E10) or 'all'")
		quick   = flag.Bool("quick", false, "reduced parameter sweeps (seconds instead of minutes)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "write BENCH_<ID>.json per experiment (see -outdir)")
		outDir  = flag.String("outdir", ".", "directory for -json output files")
		obsAddr = flag.String("obs", "", "observability HTTP address for sweep progress and pprof (empty = disabled)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "outdir: %v\n", err)
			os.Exit(1)
		}
	}

	// Sweep progress, published to /statusz so a long -exp all run can be
	// watched (and profiled via /debug/pprof/) from outside.
	var progMu sync.Mutex
	type progress struct {
		Started   time.Time `json:"started"`
		Total     int       `json:"experiments_total"`
		Done      int       `json:"experiments_done"`
		Current   string    `json:"current"`
		Completed []string  `json:"completed"`
	}
	prog := progress{Started: time.Now(), Total: len(selected)}
	if *obsAddr != "" {
		srv := obs.NewServer(*obsAddr)
		srv.SetStatus(func() any {
			progMu.Lock()
			defer progMu.Unlock()
			return prog
		})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability on http://%s (/metrics /statusz /debug/pprof/)\n\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}()
	}

	params := bench.Params{Quick: *quick}
	for _, e := range selected {
		progMu.Lock()
		prog.Current = e.ID
		progMu.Unlock()
		start := time.Now()
		tables := e.Run(params)
		elapsed := time.Since(start)
		progMu.Lock()
		prog.Done++
		prog.Completed = append(prog.Completed, e.ID)
		prog.Current = ""
		progMu.Unlock()
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		if !*jsonOut {
			continue
		}
		rep := &bench.Report{
			Experiment: e.ID,
			Title:      e.Title,
			Quick:      *quick,
			ElapsedMS:  elapsed.Milliseconds(),
			Tables:     tables,
		}
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, "BENCH_"+e.ID+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", path)
	}
}
