// Command tcpnode runs ONE snapshot-object node over real TCP; start n of
// them (one per terminal, container or machine) to form a live cluster.
//
// Example — a 3-node cluster on localhost:
//
//	tcpnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	tcpnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	tcpnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	        -write hello -interval 1s -snapshot-every 3s
//
// Each node optionally writes a fresh value every -interval and prints a
// snapshot every -snapshot-every. Stop with Ctrl-C.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfstabsnap/internal/deltasnap"
	"selfstabsnap/internal/node"
	"selfstabsnap/internal/nonblocking"
	"selfstabsnap/internal/tcpnet"
	"selfstabsnap/internal/types"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this node's id (index into -peers)")
		peers    = flag.String("peers", "", "comma-separated host:port list, one per node")
		algName  = flag.String("alg", "ss-nonblocking", "ss-nonblocking or ss-delta")
		delta    = flag.Int64("delta", 4, "δ for ss-delta")
		write    = flag.String("write", "", "value prefix to write periodically (empty = don't write)")
		interval = flag.Duration("interval", time.Second, "write period")
		snapEach = flag.Duration("snapshot-every", 5*time.Second, "snapshot period (0 = never)")
		inboxCap = flag.Int("inbox", 0, "bounded inbox capacity, drop-oldest on overflow (0 = default 4096)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 3 {
		fmt.Fprintln(os.Stderr, "need at least 3 peers (2f < n)")
		os.Exit(2)
	}
	tr, err := tcpnet.NewWithOptions(*id, addrs, tcpnet.Options{InboxCap: *inboxCap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tr.Close()

	opts := node.Options{LoopInterval: 50 * time.Millisecond, RetxInterval: 200 * time.Millisecond}

	type snapObj interface {
		Write(types.Value) error
		Snapshot() (types.RegVector, error)
		Close()
	}
	var obj snapObj
	switch strings.ToLower(*algName) {
	case "ss-nonblocking":
		nd := nonblocking.New(*id, tr, nonblocking.Config{SelfStabilizing: true, Runtime: opts})
		nd.Start()
		obj = nd
	case "ss-delta":
		nd := deltasnap.New(*id, tr, deltasnap.Config{Delta: *delta, Runtime: opts})
		nd.Start()
		obj = nd
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	defer obj.Close()

	fmt.Printf("node %d listening on %s (%s, %d peers)\n", *id, tr.Addr(), *algName, len(addrs))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var writeTick, snapTick <-chan time.Time
	if *write != "" {
		t := time.NewTicker(*interval)
		defer t.Stop()
		writeTick = t.C
	}
	if *snapEach > 0 {
		t := time.NewTicker(*snapEach)
		defer t.Stop()
		snapTick = t.C
	}

	seq := 0
	for {
		select {
		case <-stop:
			s := tr.Counters().Snapshot()
			fmt.Printf("\nshutting down; traffic:\n%s", s)
			return
		case <-writeTick:
			seq++
			v := types.Value(fmt.Sprintf("%s-%d", *write, seq))
			start := time.Now()
			if err := obj.Write(v); err != nil {
				fmt.Printf("write %s: %v\n", v, err)
				continue
			}
			fmt.Printf("wrote %q in %v\n", v, time.Since(start).Round(time.Millisecond))
		case <-snapTick:
			start := time.Now()
			snap, err := obj.Snapshot()
			if err != nil {
				fmt.Printf("snapshot: %v\n", err)
				continue
			}
			fmt.Printf("snapshot (%v): %s\n", time.Since(start).Round(time.Millisecond), snap)
		}
	}
}
