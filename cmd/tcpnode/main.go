// Command tcpnode runs ONE snapshot-object node over real TCP; start n of
// them (one per terminal, container or machine) to form a live cluster.
//
// Example — a 3-node cluster on localhost:
//
//	tcpnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	tcpnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	tcpnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	        -write hello -interval 1s -snapshot-every 3s
//
// Each node optionally writes a fresh value every -interval and prints a
// snapshot every -snapshot-every; with -objects K the node hosts K
// independent snapshot objects multiplexed over the one TCP transport and
// rotates the periodic workload over them. With -obs the node serves
// /metrics (Prometheus), /statusz (JSON) and /debug/pprof/ on the given
// address — see docs/OBSERVABILITY.md. Stop with Ctrl-C.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfstabsnap/internal/deltasnap"
	"selfstabsnap/internal/metrics"
	"selfstabsnap/internal/node"
	"selfstabsnap/internal/nonblocking"
	"selfstabsnap/internal/obs"
	"selfstabsnap/internal/tcpnet"
	"selfstabsnap/internal/types"
)

// regSummary is the per-register slice of the /statusz document.
type regSummary struct {
	Node  int   `json:"node"`
	TS    int64 `json:"ts"`
	Bytes int   `json:"bytes"`
}

func summarize(reg types.RegVector) []regSummary {
	out := make([]regSummary, len(reg))
	for k, e := range reg {
		out[k] = regSummary{Node: k, TS: e.TS, Bytes: len(e.Val)}
	}
	return out
}

// obsObjectCap bounds the cardinality of per-object observability series:
// no matter how many objects a node hosts, at most this many labeled
// series (and /statusz entries) are exported, plus aggregates. Keeps a
// 4096-object node from melting a Prometheus scrape.
const obsObjectCap = 16

// objStatus is one hosted object's slice of the /statusz document.
type objStatus struct {
	Obj       int          `json:"obj"`
	Registers []regSummary `json:"registers"`
}

func main() {
	var (
		id       = flag.Int("id", 0, "this node's id (index into -peers)")
		peers    = flag.String("peers", "", "comma-separated host:port list, one per node")
		algName  = flag.String("alg", "ss-nonblocking", "ss-nonblocking or ss-delta")
		delta    = flag.Int64("delta", 4, "δ for ss-delta")
		adaptive = flag.Bool("adaptive-delta", false, "auto-tune δ from live write/snapshot latency (ss-delta only)")
		tuneEach = flag.Duration("tune-every", 5*time.Second, "adaptive-δ observation period")
		write    = flag.String("write", "", "value prefix to write periodically (empty = don't write)")
		interval = flag.Duration("interval", time.Second, "write period")
		snapEach = flag.Duration("snapshot-every", 5*time.Second, "snapshot period (0 = never)")
		inboxCap = flag.Int("inbox", 0, "bounded inbox capacity, drop-oldest on overflow (0 = default 4096)")
		shards   = flag.Int("shards", 1, "parallel dispatch shards per node (1 = classic single dispatcher)")
		objects  = flag.Int("objects", 1, "snapshot objects hosted on this node, multiplexed over one transport and one dispatcher")
		obsAddr  = flag.String("obs", "", "observability HTTP address for /metrics, /statusz and pprof (empty = disabled)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 3 {
		fmt.Fprintln(os.Stderr, "need at least 3 peers (2f < n)")
		os.Exit(2)
	}
	tr, err := tcpnet.NewWithOptions(*id, addrs, tcpnet.Options{InboxCap: *inboxCap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tr.Close()

	journal := obs.NewJournal(0)
	opts := node.Options{
		LoopInterval:   50 * time.Millisecond,
		RetxInterval:   200 * time.Millisecond,
		Journal:        journal,
		DispatchShards: *shards,
	}

	if *objects < 1 || *objects > node.MaxObjects {
		fmt.Fprintf(os.Stderr, "-objects must be in [1, %d]\n", node.MaxObjects)
		os.Exit(2)
	}

	type snapObj interface {
		Write(types.Value) error
		Snapshot() (types.RegVector, error)
		Start()
		Close()
		Runtime() *node.Runtime
	}

	// Object 0 builds the host runtime; the rest attach to it, multiplexing
	// every object over the one transport and dispatcher. Start is deferred
	// until the whole table is attached (idempotent across instances).
	objs := make([]snapObj, *objects)
	registersOf := make([]func() []regSummary, *objects)
	var deltaNode *deltasnap.Node // object 0's δ node; the tuner targets it
	for o := 0; o < *objects; o++ {
		ropts := opts
		if o > 0 {
			ropts.Attach = objs[0].Runtime()
		}
		switch strings.ToLower(*algName) {
		case "ss-nonblocking":
			nd := nonblocking.New(*id, tr, nonblocking.Config{SelfStabilizing: true, Runtime: ropts})
			objs[o] = nd
			registersOf[o] = func() []regSummary { return summarize(nd.StateSummary().Reg) }
		case "ss-delta":
			nd := deltasnap.New(*id, tr, deltasnap.Config{Delta: *delta, Runtime: ropts})
			objs[o] = nd
			if o == 0 {
				deltaNode = nd
			}
			registersOf[o] = func() []regSummary { return summarize(nd.StateSummary().Reg) }
		default:
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
			os.Exit(2)
		}
	}
	for _, o := range objs {
		o.Start()
	}
	obj := objs[0]
	registers := registersOf[0]
	defer obj.Close()

	var writeLat, snapLat metrics.LatencyRecorder

	// deltaValue reports the node's live δ (the tuner may move it), or -1
	// when the algorithm has no δ at all.
	deltaValue := func() int64 {
		if deltaNode == nil {
			return -1
		}
		return deltaNode.DeltaValue()
	}
	var tuner *deltasnap.Tuner
	if *adaptive {
		if deltaNode == nil {
			fmt.Fprintln(os.Stderr, "-adaptive-delta requires -alg ss-delta")
			os.Exit(2)
		}
		tuner = deltasnap.NewTuner(*delta, deltasnap.TunerConfig{})
	}

	if *obsAddr != "" {
		srv := obs.NewServer(*obsAddr)
		srv.AddCollector(func(w io.Writer) { tr.Counters().WritePrometheus(w) })
		srv.AddCollector(func(w io.Writer) {
			writeLat.Histogram().WritePrometheus(w, "selfstabsnap_write_latency_seconds")
			snapLat.Histogram().WritePrometheus(w, "selfstabsnap_snapshot_latency_seconds")
			fmt.Fprintf(w, "# TYPE selfstabsnap_loop_iterations_total counter\nselfstabsnap_loop_iterations_total %d\n",
				obj.Runtime().LoopCount())
			fmt.Fprintf(w, "# TYPE selfstabsnap_journal_events_total counter\nselfstabsnap_journal_events_total %d\n",
				journal.Total())
			if d := deltaValue(); d >= 0 {
				fmt.Fprintf(w, "# TYPE selfstabsnap_delta gauge\nselfstabsnap_delta %d\n", d)
			}
			if tuner != nil {
				fmt.Fprintf(w, "# TYPE selfstabsnap_delta_adjustments_total counter\nselfstabsnap_delta_adjustments_total %d\n",
					tuner.Adjustments())
			}
			if depths, ack := obj.Runtime().DispatchDepths(); depths != nil {
				fmt.Fprintf(w, "# TYPE selfstabsnap_dispatch_queue_depth gauge\n")
				for i, d := range depths {
					fmt.Fprintf(w, "selfstabsnap_dispatch_queue_depth{lane=\"shard%d\"} %d\n", i, d)
				}
				fmt.Fprintf(w, "selfstabsnap_dispatch_queue_depth{lane=\"ack\"} %d\n", ack)
			}
			fmt.Fprintf(w, "# TYPE selfstabsnap_objects_hosted gauge\nselfstabsnap_objects_hosted %d\n", len(objs))
			if len(objs) > 1 {
				// Per-object progress gauges, bounded cardinality: at most
				// obsObjectCap labeled series regardless of -objects.
				fmt.Fprintf(w, "# TYPE selfstabsnap_object_max_ts gauge\n")
				for o := 0; o < len(objs) && o < obsObjectCap; o++ {
					var maxTS int64
					for _, r := range registersOf[o]() {
						if r.TS > maxTS {
							maxTS = r.TS
						}
					}
					fmt.Fprintf(w, "selfstabsnap_object_max_ts{obj=\"%d\"} %d\n", o, maxTS)
				}
			}
		})
		srv.SetStatus(func() any {
			var perObject []objStatus
			if len(objs) > 1 {
				// Bounded like the Prometheus series: the first obsObjectCap
				// objects in full, the count telling the rest of the story.
				for o := 0; o < len(objs) && o < obsObjectCap; o++ {
					perObject = append(perObject, objStatus{Obj: o, Registers: registersOf[o]()})
				}
			}
			shardDepths, ackDepth := obj.Runtime().DispatchDepths()
			return struct {
				ID          int                `json:"id"`
				Addr        string             `json:"addr"`
				Algorithm   string             `json:"algorithm"`
				N           int                `json:"n"`
				Shards      int                `json:"dispatch_shards"`
				Objects     int                `json:"objects"`
				LoopCount   int64              `json:"loop_count"`
				LastTick    time.Time          `json:"last_tick"`
				Delta       int64              `json:"delta"` // live δ; -1 when the algorithm has none
				Registers   []regSummary       `json:"registers"`
				PerObject   []objStatus        `json:"per_object,omitempty"` // capped at obsObjectCap entries
				ShardDepths []int              `json:"shard_queue_depths,omitempty"`
				AckDepth    int                `json:"ack_queue_depth"`
				EventCounts map[string]int64   `json:"event_counts"`
				Recent      []obs.JournalEvent `json:"recent_events"`
				WriteLat    string             `json:"write_latency"`
				SnapLat     string             `json:"snapshot_latency"`
				Traffic     string             `json:"traffic"`
			}{
				ID:          *id,
				Addr:        tr.Addr(),
				Algorithm:   strings.ToLower(*algName),
				N:           len(addrs),
				Shards:      obj.Runtime().DispatchShards(),
				Objects:     len(objs),
				LoopCount:   obj.Runtime().LoopCount(),
				LastTick:    obj.Runtime().LastTick(),
				Delta:       deltaValue(),
				Registers:   registers(),
				PerObject:   perObject,
				ShardDepths: shardDepths,
				AckDepth:    ackDepth,
				EventCounts: journal.Counts(),
				Recent:      journal.Events(),
				WriteLat:    writeLat.Stats().String(),
				SnapLat:     snapLat.Stats().String(),
				Traffic:     tr.Counters().Snapshot().String(),
			}
		})
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability on http://%s (/metrics /statusz /debug/pprof/)\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}()
	}

	fmt.Printf("node %d listening on %s (%s, %d peers)\n", *id, tr.Addr(), *algName, len(addrs))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var writeTick, snapTick <-chan time.Time
	if *write != "" {
		t := time.NewTicker(*interval)
		defer t.Stop()
		writeTick = t.C
	}
	if *snapEach > 0 {
		t := time.NewTicker(*snapEach)
		defer t.Stop()
		snapTick = t.C
	}
	var tuneTick <-chan time.Time
	if tuner != nil {
		t := time.NewTicker(*tuneEach)
		defer t.Stop()
		tuneTick = t.C
	}

	// The periodic workload rotates over the hosted objects, so every
	// object sees traffic (and its own register advances on /statusz).
	seq, snapSeq := 0, 0
	for {
		select {
		case <-stop:
			s := tr.Counters().Snapshot()
			fmt.Printf("\nshutting down; traffic:\n%s", s)
			return
		case <-writeTick:
			seq++
			o := seq % len(objs)
			v := types.Value(fmt.Sprintf("%s-%d", *write, seq))
			start := time.Now()
			if err := objs[o].Write(v); err != nil {
				fmt.Printf("write %s obj %d: %v\n", v, o, err)
				continue
			}
			d := time.Since(start)
			writeLat.Record(d)
			fmt.Printf("wrote %q to obj %d in %v\n", v, o, d.Round(time.Millisecond))
		case <-tuneTick:
			if d, changed := tuner.Observe(writeLat.Stats(), snapLat.Stats()); changed {
				deltaNode.SetDelta(d)
				fmt.Printf("adaptive δ → %d (adjustment #%d)\n", d, tuner.Adjustments())
			}
		case <-snapTick:
			snapSeq++
			o := snapSeq % len(objs)
			start := time.Now()
			snap, err := objs[o].Snapshot()
			if err != nil {
				fmt.Printf("snapshot obj %d: %v\n", o, err)
				continue
			}
			d := time.Since(start)
			snapLat.Record(d)
			fmt.Printf("snapshot obj %d (%v): %s\n", o, d.Round(time.Millisecond), snap)
		}
	}
}
