// Command snapfuzz soaks a snapshot-object cluster with randomized fault
// schedules (crash/resume churn, minority partitions, optional transient
// faults) under a concurrent workload, checking every run's operation
// history for linearizability — a command-line front end for the
// internal/chaos harness.
//
// Sequential mode runs seeds one at a time, printing each result:
//
//	snapfuzz -alg ss-delta -n 7 -runs 50 -duration 300ms -crash 15 -partition 10
//	snapfuzz -alg ss-nonblocking -corrupt -runs 20
//
// Campaign mode shards the seed range across parallel workers, with every
// run executed as a deterministic virtual-time simulation — thousands of
// seeds in well under a minute of wall clock — and delta-minimizes the
// fault schedule of every failure:
//
//	snapfuzz -campaign -runs 1000 -corrupt -crash 15 -partition 10 -out failures.json
//
// Hostile-topology nemeses stack on top of either mode: an asymmetric WAN
// link matrix (-wan-matrix), flapping partitions (-flap), slow-but-alive
// nodes (-slow-node), skewed detectable restarts (-skewed-restart), and the
// checkpoint/restore bank workload (-bank) with its cut-consistency
// invariant:
//
//	snapfuzz -campaign -runs 500 -alg ss-delta -crash 4 -partition 3 \
//	    -wan-matrix 3 -wan-cross 1ms -flap 2 -flap-period 150ms -flap-duty 0.1 \
//	    -slow-node 4 -slow-factor 4 -skewed-restart 8 -bank -out failures.json
//
// Exit status 1 on any violation. In sequential mode the failing seed is
// printed so the run can be replayed exactly (-seed N -runs 1 -virtual);
// in campaign mode every failure — seed, violation, full and minimized
// schedule — is also written as JSON to -out for CI artifact upload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"selfstabsnap/internal/chaos"
	"selfstabsnap/internal/core"
	"selfstabsnap/internal/faults"
	"selfstabsnap/internal/netsim"
	"selfstabsnap/internal/obs"
)

var algorithms = map[string]core.Algorithm{
	"dg-nonblocking":   core.NonBlockingDG,
	"ss-nonblocking":   core.NonBlockingSS,
	"dg-alwaysterm":    core.AlwaysTerminatingDG,
	"ss-delta":         core.DeltaSS,
	"stacked":          core.StackedABD,
	"ss-bounded":       core.BoundedSS,
	"ss-bounded-delta": core.BoundedDeltaSS,
}

func main() {
	var (
		algName   = flag.String("alg", "ss-nonblocking", "algorithm under test")
		n         = flag.Int("n", 5, "cluster size")
		delta     = flag.Int64("delta", 2, "δ for ss-delta")
		runs      = flag.Int("runs", 20, "number of seeded runs")
		seed      = flag.Int64("seed", 1, "first seed (seeds run seed..seed+runs-1)")
		duration  = flag.Duration("duration", 250*time.Millisecond, "workload duration per run")
		crash     = flag.Float64("crash", 15, "crash events per second (0 = none)")
		partition = flag.Float64("partition", 0, "partition events per second (0 = none)")
		ackCorr   = flag.Float64("ack-corrupt", 0, "delta-gossip ack-table corruptions per second (0 = none)")
		corrupt   = flag.Bool("corrupt", false, "inject a transient fault before each run")
		drop      = flag.Float64("drop", 0.05, "packet drop probability")
		dup       = flag.Float64("dup", 0.05, "packet duplication probability")
		virtual   = flag.Bool("virtual", false, "run on the deterministic virtual clock (no wall-clock sleeping)")
		wanMatrix = flag.Int("wan-matrix", 0, "asymmetric WAN link matrix with this many latency regions (0 = uniform network)")
		wanCross  = flag.Duration("wan-cross", time.Millisecond, "WAN matrix: cross-region delay bound")
		wanDrop   = flag.Float64("wan-drop", 0.05, "WAN matrix: cross-region drop probability")
		flap      = flag.Int("flap", 0, "flapping partitions: nodes on the periodic cut/heal train (0 = none)")
		flapPer   = flag.Duration("flap-period", 0, "flapping partitions: pulse period (0 = default)")
		flapDuty  = flag.Float64("flap-duty", 0, "flapping partitions: fraction of each period spent cut (0 = default)")
		slowNode  = flag.Float64("slow-node", 0, "slow-but-alive windows per second (0 = none)")
		slowFact  = flag.Float64("slow-factor", 0, "delay inflation while a node is slowed (0 = default)")
		skewedRst = flag.Float64("skewed-restart", 0, "detectable restarts with recovery per second (0 = none)")
		maxSkew   = flag.Duration("max-skew", 0, "skewed restarts: restart-window bound (0 = adaptive default)")
		bankLoad  = flag.Bool("bank", false, "drive the checkpoint/restore bank workload instead of the generic one")
		maxInt    = flag.Int64("max-int", 0, "bounded algorithms: overflow threshold MAXINT (0 = practically unbounded; >0 makes global resets fire)")
		pinCrash  = flag.Bool("pin-crash", false, "crash node 0 for the whole checked phase (coordinator-crash mix for reset campaigns)")
		abortRst  = flag.Bool("abort-reset", false, "abort in-flight ops when a reset commits instead of deferring them")
		campaign  = flag.Bool("campaign", false, "campaign mode: shard seeds across workers, virtual time, minimize failures")
		workers   = flag.Int("workers", 0, "campaign parallelism (0 = GOMAXPROCS)")
		out       = flag.String("out", "", "campaign mode: write failures (seed + minimized schedule) as JSON to this file")
		obsAddr   = flag.String("obs", "", "observability HTTP address for fuzz progress and pprof (empty = disabled)")
		statsEach = flag.Duration("stats-every", 0, "sequential mode: print in-run progress every interval of the run's clock (0 = off)")
	)
	flag.Parse()

	alg, ok := algorithms[strings.ToLower(*algName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if *corrupt && !alg.SelfStabilizing() {
		fmt.Fprintf(os.Stderr, "-corrupt requires a self-stabilizing algorithm\n")
		os.Exit(2)
	}

	base := chaos.Config{
		N: *n, Algorithm: alg, Delta: *delta,
		Adversary: netsim.Adversary{DropProb: *drop, DupProb: *dup, MaxDelay: 2 * time.Millisecond},
		Duration:  *duration,
		CrashRate: *crash, PartitionRate: *partition, AckCorruptRate: *ackCorr,
		Corrupt:           *corrupt,
		Virtual:           *virtual,
		SlowNodeRate:      *slowNode,
		SlowNodeFactor:    *slowFact,
		SkewedRestartRate: *skewedRst,
		MaxSkew:           *maxSkew,
		MaxInt:            *maxInt,
		PinCrash:          *pinCrash,
		AbortDuringReset:  *abortRst,
	}
	if *maxInt > 0 && !alg.Bounded() {
		fmt.Fprintf(os.Stderr, "-max-int requires a bounded algorithm (ss-bounded, ss-bounded-delta)\n")
		os.Exit(2)
	}
	if *wanMatrix > 0 {
		base.WAN = &faults.WANSpec{Regions: *wanMatrix, Cross: *wanCross, DropProb: *wanDrop}
	}
	if *flap > 0 {
		base.Flapping = &chaos.FlappingSpec{Count: *flap, Period: *flapPer, Duty: *flapDuty}
	}
	if *bankLoad {
		base.Bank = &chaos.BankSpec{}
	}

	prog := newFuzzProgress(*runs)
	shutdownObs := func() {}
	if *obsAddr != "" {
		srv := obs.NewServer(*obsAddr)
		srv.SetStatus(prog.status)
		if err := srv.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability on http://%s (/metrics /statusz /debug/pprof/)\n\n", srv.Addr())
		shutdownObs = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
		}
		defer shutdownObs()
	}

	if *campaign {
		code := runCampaign(base, *seed, *runs, *workers, *out, prog)
		shutdownObs()
		os.Exit(code)
	}

	fmt.Printf("fuzzing %s: n=%d runs=%d duration=%v crash=%.0f/s partition=%.0f/s ack-corrupt=%.0f/s corrupt=%v virtual=%v\n\n",
		alg, *n, *runs, *duration, *crash, *partition, *ackCorr, *corrupt, *virtual)

	start := time.Now()
	var totalOps int64
	for i := 0; i < *runs; i++ {
		s := *seed + int64(i)
		cfg := base
		cfg.Seed = s
		if *statsEach > 0 {
			cfg.StatsEvery = *statsEach
			cfg.OnStats = func(st chaos.Stats) { fmt.Printf("seed %-6d … %s\n", s, st) }
		}
		prog.startSeed(s)
		res, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: setup error: %v\n", s, err)
			shutdownObs()
			os.Exit(1)
		}
		fmt.Printf("seed %-6d %s\n", s, res)
		totalOps += res.Writes + res.Snapshots
		prog.finishSeed(res, res.Violation != nil)
		if res.Violation != nil {
			fmt.Fprintf(os.Stderr, "\nVIOLATION at seed %d — replay with -seed %d -runs 1\n", s, s)
			shutdownObs()
			os.Exit(1)
		}
	}
	fmt.Printf("\n%d runs, %d operations, 0 violations in %v\n",
		*runs, totalOps, time.Since(start).Round(time.Millisecond))
}

// fuzzProgress is the /statusz document of a fuzzing process, updated by
// both the sequential loop and the campaign progress callback.
type fuzzProgress struct {
	mu sync.Mutex
	v  struct {
		Started     time.Time `json:"started"`
		RunsTotal   int       `json:"runs_total"`
		RunsDone    int       `json:"runs_done"`
		CurrentSeed int64     `json:"current_seed"`
		Writes      int64     `json:"writes"`
		Snapshots   int64     `json:"snapshots"`
		Failures    int       `json:"failures"`
	}
}

func newFuzzProgress(total int) *fuzzProgress {
	p := &fuzzProgress{}
	p.v.Started = time.Now()
	p.v.RunsTotal = total
	return p
}

func (p *fuzzProgress) status() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.v
}

func (p *fuzzProgress) startSeed(s int64) {
	p.mu.Lock()
	p.v.CurrentSeed = s
	p.mu.Unlock()
}

func (p *fuzzProgress) finishSeed(res chaos.Result, failed bool) {
	p.mu.Lock()
	p.v.RunsDone++
	p.v.Writes += res.Writes
	p.v.Snapshots += res.Snapshots
	if failed {
		p.v.Failures++
	}
	p.mu.Unlock()
}

func (p *fuzzProgress) campaignTick(done, failures int) {
	p.mu.Lock()
	p.v.RunsDone = done
	p.v.Failures = failures
	p.mu.Unlock()
}

// campaignFailure is the JSON artifact shape for one failing seed.
type campaignFailure struct {
	Seed      int64              `json:"seed"`
	Error     string             `json:"error,omitempty"`
	Violation string             `json:"violation,omitempty"`
	Schedule  []chaos.FaultEvent `json:"schedule"`
	Minimized []chaos.FaultEvent `json:"minimized,omitempty"`
}

func runCampaign(base chaos.Config, fromSeed int64, runs, workers int, out string, prog *fuzzProgress) int {
	fmt.Printf("campaign %s: n=%d seeds=%d..%d duration=%v crash=%.0f/s partition=%.0f/s ack-corrupt=%.0f/s corrupt=%v\n\n",
		base.Algorithm, base.N, fromSeed, fromSeed+int64(runs)-1, base.Duration,
		base.CrashRate, base.PartitionRate, base.AckCorruptRate, base.Corrupt)

	start := time.Now()
	lastTick := 0
	res := chaos.RunCampaign(chaos.CampaignConfig{
		Base:     base,
		FromSeed: fromSeed,
		Seeds:    runs,
		Workers:  workers,
		Minimize: true,
		Progress: func(done, total, failures int) {
			prog.campaignTick(done, failures)
			// One line per ~5% so CI logs stay readable.
			if done*20/total > lastTick || done == total {
				lastTick = done * 20 / total
				fmt.Printf("  %5d/%d seeds, %d failures, %v elapsed\n",
					done, total, failures, time.Since(start).Round(time.Millisecond))
			}
		},
	})

	fmt.Printf("\n%d seeds, %d writes, %d snapshots, %d failures in %v\n",
		res.Seeds, res.Writes, res.Snapshots, len(res.Failures), time.Since(start).Round(time.Millisecond))

	if len(res.Failures) == 0 {
		return 0
	}
	artifacts := make([]campaignFailure, 0, len(res.Failures))
	for _, f := range res.Failures {
		a := campaignFailure{Seed: f.Seed, Schedule: f.Result.Schedule, Minimized: f.Minimized}
		if f.Err != nil {
			a.Error = f.Err.Error()
		}
		if f.Result.Violation != nil {
			a.Violation = f.Result.Violation.Error()
		}
		artifacts = append(artifacts, a)
		fmt.Fprintf(os.Stderr, "FAIL seed %d: err=%v violation=%v schedule=%d events minimized=%d events\n",
			f.Seed, f.Err, f.Result.Violation, len(f.Result.Schedule), len(f.Minimized))
	}
	if out != "" {
		blob, err := json.MarshalIndent(artifacts, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", out, err)
		} else {
			fmt.Fprintf(os.Stderr, "failure artifact written to %s\n", out)
		}
	}
	return 1
}
