// Command snapfuzz soaks a snapshot-object cluster with randomized fault
// schedules (crash/resume churn, minority partitions, optional transient
// faults) under a concurrent workload, checking every run's operation
// history for linearizability — a command-line front end for the
// internal/chaos harness.
//
//	snapfuzz -alg ss-delta -n 7 -runs 50 -duration 300ms -crash 15 -partition 10
//	snapfuzz -alg ss-nonblocking -corrupt -runs 20
//
// Exit status 1 on the first violation, with the failing seed printed so
// the run can be replayed exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"selfstabsnap/internal/chaos"
	"selfstabsnap/internal/core"
	"selfstabsnap/internal/netsim"
)

var algorithms = map[string]core.Algorithm{
	"dg-nonblocking": core.NonBlockingDG,
	"ss-nonblocking": core.NonBlockingSS,
	"dg-alwaysterm":  core.AlwaysTerminatingDG,
	"ss-delta":       core.DeltaSS,
	"stacked":        core.StackedABD,
}

func main() {
	var (
		algName   = flag.String("alg", "ss-nonblocking", "algorithm under test")
		n         = flag.Int("n", 5, "cluster size")
		delta     = flag.Int64("delta", 2, "δ for ss-delta")
		runs      = flag.Int("runs", 20, "number of seeded runs")
		seed      = flag.Int64("seed", 1, "first seed (seeds run seed..seed+runs-1)")
		duration  = flag.Duration("duration", 250*time.Millisecond, "workload duration per run")
		crash     = flag.Float64("crash", 15, "crash events per second (0 = none)")
		partition = flag.Float64("partition", 0, "partition events per second (0 = none)")
		corrupt   = flag.Bool("corrupt", false, "inject a transient fault before each run")
		drop      = flag.Float64("drop", 0.05, "packet drop probability")
		dup       = flag.Float64("dup", 0.05, "packet duplication probability")
	)
	flag.Parse()

	alg, ok := algorithms[strings.ToLower(*algName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if *corrupt && !alg.SelfStabilizing() {
		fmt.Fprintf(os.Stderr, "-corrupt requires a self-stabilizing algorithm\n")
		os.Exit(2)
	}

	fmt.Printf("fuzzing %s: n=%d runs=%d duration=%v crash=%.0f/s partition=%.0f/s corrupt=%v\n\n",
		alg, *n, *runs, *duration, *crash, *partition, *corrupt)

	start := time.Now()
	var totalOps int64
	for i := 0; i < *runs; i++ {
		s := *seed + int64(i)
		res, err := chaos.Run(chaos.Config{
			N: *n, Algorithm: alg, Delta: *delta, Seed: s,
			Adversary: netsim.Adversary{DropProb: *drop, DupProb: *dup, MaxDelay: 2 * time.Millisecond},
			Duration:  *duration,
			CrashRate: *crash, PartitionRate: *partition,
			Corrupt: *corrupt,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: setup error: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Printf("seed %-6d %s\n", s, res)
		totalOps += res.Writes + res.Snapshots
		if res.Violation != nil {
			fmt.Fprintf(os.Stderr, "\nVIOLATION at seed %d — replay with -seed %d -runs 1\n", s, s)
			os.Exit(1)
		}
	}
	fmt.Printf("\n%d runs, %d operations, 0 violations in %v\n",
		*runs, totalOps, time.Since(start).Round(time.Millisecond))
}
