// Command snapdemo runs an in-memory cluster of snapshot-object nodes with
// a configurable algorithm, workload and fault plan, then prints operation
// results, traffic metrics and (optionally) a message-sequence trace.
//
// Examples:
//
//	snapdemo -alg ss-nonblocking -n 5 -writes 20 -snapshots 3
//	snapdemo -alg ss-delta -delta 4 -n 7 -writers 6 -storm 200ms
//	snapdemo -alg ss-nonblocking -n 5 -corrupt -writes 10
//	snapdemo -alg ss-bounded -maxint 64 -writes 150
//	snapdemo -alg dg-alwaysterm -n 4 -trace -writes 1 -snapshots 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selfstabsnap/internal/core"
	"selfstabsnap/internal/netsim"
	"selfstabsnap/internal/trace"
	"selfstabsnap/internal/types"
)

var algorithms = map[string]core.Algorithm{
	"dg-nonblocking": core.NonBlockingDG,
	"ss-nonblocking": core.NonBlockingSS,
	"dg-alwaysterm":  core.AlwaysTerminatingDG,
	"ss-delta":       core.DeltaSS,
	"stacked":        core.StackedABD,
	"ss-bounded":     core.BoundedSS,
}

func main() {
	var (
		algName   = flag.String("alg", "ss-nonblocking", "algorithm: "+strings.Join(algNames(), ", "))
		n         = flag.Int("n", 5, "cluster size")
		delta     = flag.Int64("delta", 0, "Algorithm 3's δ parameter")
		seed      = flag.Int64("seed", 1, "randomness seed")
		writes    = flag.Int("writes", 10, "sequential writes from node 0")
		snapshots = flag.Int("snapshots", 2, "snapshots from node 1")
		writers   = flag.Int("writers", 0, "background writer nodes during the storm phase")
		storm     = flag.Duration("storm", 0, "duration of a concurrent write storm")
		drop      = flag.Float64("drop", 0, "packet drop probability")
		dup       = flag.Float64("dup", 0, "packet duplication probability")
		maxDelay  = flag.Duration("maxdelay", 0, "max packet delay (reordering)")
		crash     = flag.Int("crash", 0, "crash this many highest-id nodes before the workload")
		corrupt   = flag.Bool("corrupt", false, "inject a transient fault (full state corruption) mid-workload")
		maxInt    = flag.Int64("maxint", 0, "ss-bounded overflow threshold (0 = default)")
		showTrace = flag.Bool("trace", false, "print the message-sequence diagram (operations only)")
	)
	flag.Parse()

	alg, ok := algorithms[strings.ToLower(*algName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q; choose from %s\n", *algName, strings.Join(algNames(), ", "))
		os.Exit(2)
	}

	var rec *trace.Recorder
	cfg := core.Config{
		N: *n, Algorithm: alg, Delta: *delta, Seed: *seed,
		LoopInterval: time.Millisecond, RetxInterval: 3 * time.Millisecond,
		Adversary: netsim.Adversary{DropProb: *drop, DupProb: *dup, MaxDelay: *maxDelay},
		MaxInt:    *maxInt,
	}
	if *showTrace {
		rec = trace.NewRecorder()
		cfg.Trace = rec
	}
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cluster.Close()

	fmt.Printf("cluster: n=%d algorithm=%s δ=%d adversary{drop=%.0f%% dup=%.0f%% delay≤%v}\n\n",
		*n, alg, *delta, *drop*100, *dup*100, *maxDelay)

	for i := 0; i < *crash; i++ {
		id := *n - 1 - i
		cluster.Crash(id)
		fmt.Printf("crashed node %d\n", id)
	}

	start := time.Now()
	for i := 0; i < *writes; i++ {
		v := types.Value(fmt.Sprintf("v%d", i))
		if err := cluster.Write(0, v); err != nil {
			fmt.Fprintf(os.Stderr, "write %d: %v\n", i, err)
			os.Exit(1)
		}
		if *corrupt && i == *writes/2 {
			if err := cluster.CorruptAll(); err != nil {
				fmt.Fprintf(os.Stderr, "corrupt: %v\n", err)
			} else {
				fmt.Printf("!! transient fault injected at every node after write %d\n", i)
				if cycles, err := cluster.CyclesToInvariant(10 * time.Second); err == nil {
					fmt.Printf("   recovered: consistency invariants restored within %d cycles\n", cycles)
				}
			}
		}
	}
	fmt.Printf("%d writes from node 0 in %v\n", *writes, time.Since(start).Round(time.Microsecond))

	if *storm > 0 && *writers > 0 {
		var ops atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 1; w <= *writers && w < *n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; ; j++ {
					select {
					case <-stop:
						return
					default:
					}
					if cluster.Write(w, types.Value(fmt.Sprintf("storm-%d-%d", w, j))) == nil {
						ops.Add(1)
					}
				}
			}(w)
		}
		sStart := time.Now()
		snap, err := cluster.Snapshot(0)
		sLat := time.Since(sStart)
		time.Sleep(*storm)
		close(stop)
		wg.Wait()
		if err != nil {
			fmt.Fprintf(os.Stderr, "storm snapshot: %v\n", err)
		} else {
			fmt.Printf("storm: %d concurrent writes; snapshot during storm took %v → %s\n",
				ops.Load(), sLat.Round(time.Microsecond), snap)
		}
	}

	for i := 0; i < *snapshots; i++ {
		sStart := time.Now()
		snap, err := cluster.Snapshot(1 % *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("snapshot %d (%v): %s\n", i, time.Since(sStart).Round(time.Microsecond), snap)
	}

	if b := cluster.Bounded(0); b != nil {
		fmt.Printf("\nbounded counters: resets=%d epoch=%d deferred=%d aborted=%d\n",
			b.Resets(), b.Epoch(), b.DeferredOps(), b.AbortedOps())
	}

	fmt.Printf("\ntraffic:\n%s", cluster.Metrics())

	if rec != nil {
		fmt.Printf("\nmessage-sequence trace:\n%s", rec.Render(*n))
	}
}

func algNames() []string {
	names := make([]string, 0, len(algorithms))
	for k := range algorithms {
		names = append(names, k)
	}
	// Stable order for help text.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return names
}
