package selfstabsnap_test

import (
	"fmt"
	"testing"
	"time"

	"selfstabsnap/internal/core"
	"selfstabsnap/internal/workload"
)

// Capacity benchmarks: supplementary characterization beyond the paper's
// claims — closed-loop throughput per algorithm and the write/snapshot mix
// sensitivity of the two always-terminating designs.

// BenchmarkClosedLoopThroughput reports sustained ops/s per algorithm with
// every node writing and snapshotting (1:5 mix).
func BenchmarkClosedLoopThroughput(b *testing.B) {
	for _, a := range benchAlgorithms() {
		b.Run(a.name, func(b *testing.B) {
			c := benchCluster(b, a.alg, 5, a.delta)
			b.ResetTimer()
			var totalOps int64
			var totalTime time.Duration
			for i := 0; i < b.N; i++ {
				r := workload.RunClosedLoop(c, workload.ClosedLoopConfig{
					Duration: 100 * time.Millisecond,
					Mix:      workload.Mix{SnapshotEvery: 5},
					Seed:     int64(i),
				})
				totalOps += r.Writes + r.Snapshots
				totalTime += r.Elapsed
			}
			b.StopTimer()
			if s := totalTime.Seconds(); s > 0 {
				b.ReportMetric(float64(totalOps)/s, "ops/s")
			}
		})
	}
}

// BenchmarkMixSensitivity sweeps the snapshot fraction on Algorithm 3
// (δ=0 vs δ=8): snapshot-heavy mixes hit the δ=0 variant's O(n²) cost per
// snapshot much harder.
func BenchmarkMixSensitivity(b *testing.B) {
	for _, delta := range []int64{0, 8} {
		for _, every := range []int{2, 10} {
			b.Run(fmt.Sprintf("delta=%d/snapEvery=%d", delta, every), func(b *testing.B) {
				c := benchCluster(b, core.DeltaSS, 5, delta)
				b.ResetTimer()
				var ops int64
				var elapsed time.Duration
				for i := 0; i < b.N; i++ {
					r := workload.RunClosedLoop(c, workload.ClosedLoopConfig{
						Duration: 100 * time.Millisecond,
						Mix:      workload.Mix{SnapshotEvery: every},
						Seed:     int64(i),
					})
					ops += r.Writes + r.Snapshots
					elapsed += r.Elapsed
				}
				b.StopTimer()
				if s := elapsed.Seconds(); s > 0 {
					b.ReportMetric(float64(ops)/s, "ops/s")
				}
			})
		}
	}
}
